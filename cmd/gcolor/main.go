// Command gcolor optimally colors a graph through the paper's full flow:
// 0-1 ILP reduction, optional instance-independent and instance-dependent
// symmetry-breaking predicates, and a CDCL or branch-and-bound PB solver.
//
// Usage:
//
//	gcolor -bench queen6_6 -k 10 -sbp NU+SC -instdep -engine pbs2
//	gcolor -file graph.col -k 8 -engine pueblo -timeout 30s
//	gcolor -bench anna -exact          # problem-specific B&B baseline
//	gcolor -bench queen6_6 -portfolio  # race all engines
//	gcolor -batch myciel3,myciel4,queen5_5 -k 8 -portfolio -workers 4
//
// Batch mode runs the listed instances (benchmark names and/or DIMACS .col
// paths) through the concurrent coloring service, so isomorphic inputs are
// deduplicated by the canonical-form cache. Ctrl-C cancels in-flight
// solves promptly in both modes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/heuristic"
	"repro/internal/pbsolver"
	"repro/internal/sbp"
	"repro/internal/service"
	"repro/internal/solverutil"
	"repro/internal/store"
)

func main() {
	bench := flag.String("bench", "", "named benchmark instance (see benchgen -list)")
	file := flag.String("file", "", "DIMACS .col file to color")
	batch := flag.String("batch", "", "comma-separated instances (bench names or .col paths) solved through the coloring service")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	k := flag.Int("k", 20, "color bound K")
	sbpName := flag.String("sbp", "none", "symmetry breaking: a construction (none,NU,CA,LI,SC,NU+SC) and/or a lex-leader variant (full,involution,canonset,race), comma-combinable, e.g. NU,involution; involution and race imply -instdep")
	instDep := flag.Bool("instdep", false, "detect and break instance-dependent symmetries")
	engineName := flag.String("engine", "pbs2", "solver engine: pbs2,galena,pueblo,bnb")
	portfolio := flag.Bool("portfolio", false, "race all engines, keep the first definitive answer")
	parallel := flag.Int("parallel", 0, "cube-and-conquer worker count (>1 enables the parallel subsystem)")
	cubeDepth := flag.Int("cube-depth", 0, "cube branching depth (0 = auto, ~8 cubes per worker)")
	shareLBD := flag.Int("share-lbd", 0, "learnt-clause exchange LBD threshold (0 = default 2, negative disables sharing)")
	timeout := flag.Duration("timeout", time.Minute, "solve budget per instance")
	priority := flag.Int("priority", 0, "batch mode: admission priority class (0 = normal, higher = sooner)")
	deadline := flag.Duration("deadline", 0, "batch mode: end-to-end budget per job including queue time (0 = none)")
	exact := flag.Bool("exact", false, "use the problem-specific DSATUR branch-and-bound instead")
	showColoring := flag.Bool("coloring", false, "print the witness coloring")
	glueLBD := flag.Int("glue-lbd", 0, "LBD at or below which learnt clauses are kept forever (0 = default 2)")
	reduceInterval := flag.Int64("reduce-interval", 0, "conflicts between learnt-database reductions (0 = default 2000)")
	restartBase := flag.Int64("restart-base", 0, "Luby restart unit in conflicts (0 = engine default)")
	chrono := flag.Int("chrono", 0, "chronological backtracking threshold in levels (0 = disabled)")
	vivify := flag.Int64("vivify", 0, "clause-vivification propagation budget per restart (0 = disabled)")
	dynamicLBD := flag.Bool("dynamic-lbd", false, "recompute learnt-clause LBDs during conflict analysis")
	progress := flag.Bool("progress", false, "print live search progress to stderr while solving")
	storeDir := flag.String("store.dir", "", "batch mode: persist the result cache in this directory (snapshot+WAL)")
	storeMaxAge := flag.Duration("store.maxage", 0, "drop persisted records older than this at compaction (0 = keep forever)")
	storeMaxBytes := flag.Int64("store.maxbytes", 0, "target on-disk size of the persistent cache; oldest records dropped at compaction (0 = unbounded)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gcolor: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gcolor: memprofile:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	kind, variant, err := service.ParseSBPSpec(*sbpName)
	if err != nil {
		fatal(err)
	}
	if variant == sbp.VariantInvolution || variant == sbp.VariantRace {
		// These variants consume detected generators; selecting them is an
		// unambiguous request for instance-dependent breaking.
		*instDep = true
	}
	eng, err := service.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	spec := service.JobSpec{
		K: *k, SBP: kind, SBPVariant: variant, Engine: eng, Portfolio: *portfolio,
		InstanceDependent: *instDep, Timeout: *timeout,
		Priority: *priority, Deadline: *deadline,
		ChronoThreshold: *chrono, VivifyBudget: *vivify, DynamicLBD: *dynamicLBD,
		GlueLBD: *glueLBD, ReduceInterval: *reduceInterval, RestartBase: *restartBase,
		Parallel: *parallel, CubeDepth: *cubeDepth, ShareLBD: *shareLBD,
	}

	if *batch != "" {
		if *bench != "" || *file != "" {
			fatal(fmt.Errorf("-batch excludes -bench and -file"))
		}
		sc := storeConfig{dir: *storeDir, maxAge: *storeMaxAge, maxBytes: *storeMaxBytes}
		if err := runBatch(ctx, strings.Split(*batch, ","), spec, *workers, sc, *progress); err != nil {
			fatal(err)
		}
		return
	}
	if *storeDir != "" {
		fatal(fmt.Errorf("-store.dir requires -batch (single solves bypass the service cache)"))
	}

	g, err := loadGraph(*bench, *file)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance %s: |V|=%d |E|=%d\n", g.Name(), g.N(), g.M())

	if *exact {
		res := heuristic.ExactChromatic(g, time.Now().Add(*timeout))
		status := "proven"
		if !res.Complete {
			status = "budget exhausted (upper bound)"
		}
		fmt.Printf("exact B&B: chi = %d (%s), %d nodes\n", res.Chi, status, res.Nodes)
		if *showColoring {
			fmt.Println("coloring:", res.Colors)
		}
		return
	}

	cfg := core.Config{
		K: *k, SBP: kind, SBPVariant: variant, InstanceDependent: *instDep,
		Engine: eng, Portfolio: *portfolio, Timeout: *timeout,
		GlueLBD: *glueLBD, ReduceInterval: *reduceInterval, RestartBase: *restartBase,
		ChronoThreshold: *chrono, VivifyBudget: *vivify, DynamicLBD: *dynamicLBD,
		Parallel: *parallel, CubeDepth: *cubeDepth, ShareLBD: *shareLBD,
	}
	if *progress {
		cfg.Progress = liveProgressPrinter()
		cfg.ProgressInterval = 500 * time.Millisecond
	}
	out := core.Solve(ctx, g, cfg)
	fmt.Printf("encoding: %d vars, %d clauses, %d PB constraints (SBP=%v)\n",
		out.EncodeStats.Vars, out.EncodeStats.CNF, out.EncodeStats.PB, kind)
	if s := out.Sym; s != nil {
		// A canonset run skips detection: no group order to report.
		order := "-"
		if s.Order != nil {
			order = s.Order.String()
		}
		detail := ""
		switch s.Variant {
		case sbp.VariantInvolution:
			detail = fmt.Sprintf(", %d involutions", s.Involutions)
		case sbp.VariantCanonSet:
			detail = fmt.Sprintf(", canon set %d", s.CanonSetSize)
		}
		fmt.Printf("symmetries: variant=%s, |Aut|=%s, %d generators%s, %d perms broken, detect %v, +%d SBP clauses\n",
			s.Variant, order, s.Generators, detail, s.PredicatePerms,
			s.DetectTime.Round(time.Millisecond), s.AddedCNF)
	}
	winner := ""
	if *portfolio && out.Solved() {
		winner = fmt.Sprintf(" [winner %v]", out.Winner)
	}
	switch out.Result.Status {
	case pbsolver.StatusOptimal:
		fmt.Printf("OPTIMAL: chi = %d (within K=%d) in %v, %d conflicts%s\n",
			out.Chi, *k, out.Result.Runtime.Round(time.Millisecond), out.Result.Stats.Conflicts, winner)
	case pbsolver.StatusUnsat:
		fmt.Printf("UNSAT: chi > %d, proven in %v%s\n", *k, out.Result.Runtime.Round(time.Millisecond), winner)
	case pbsolver.StatusSat:
		fmt.Printf("FEASIBLE: %d colors found, optimality unproven (budget)\n", out.Result.Objective)
	default:
		fmt.Printf("UNKNOWN: budget exhausted with no solution\n")
	}
	st := out.Result.Stats
	fmt.Printf("search: %d decisions, %d restarts, %d chrono backtracks, %d vivified lits, %d LBD updates\n",
		st.Decisions, st.Restarts, st.ChronoBacktracks, st.VivifiedLits, st.LBDUpdates)
	if p := out.Par; p != nil {
		fmt.Printf("parallel: %d workers, %d cubes (%d refuted by lookahead, %d conquered), %d clauses shared, %d imported\n",
			p.Workers, p.CubesGenerated, p.CubesRefuted, p.CubesClosed, p.ClausesExported, p.ClausesImported)
	}
	if *showColoring && out.Coloring != nil {
		fmt.Println("coloring:", out.Coloring)
	}
}

// liveProgressPrinter builds a -progress callback printing one line per
// snapshot to stderr. Safe for concurrent use (portfolio engines share
// it).
func liveProgressPrinter() func(p solverutil.Progress) {
	var mu sync.Mutex
	return func(p solverutil.Progress) {
		mu.Lock()
		defer mu.Unlock()
		best := "-"
		if p.Incumbent >= 0 {
			best = fmt.Sprintf("%d", p.Incumbent)
		}
		fmt.Fprintf(os.Stderr,
			"progress: engine=%s best=%s conflicts=%d restarts=%d learnts=%d vivified=%d lbd-updates=%d\n",
			p.Engine, best, p.Conflicts, p.Restarts, p.Learnts, p.VivifiedLits, p.LBDUpdates)
	}
}

// watchJobProgress streams one batch job's progress snapshots to stderr
// until the job reaches a terminal state.
func watchJobProgress(svc *service.Service, id, name string) {
	var seq int64
	for {
		p, more, err := svc.NextProgress(context.Background(), id, seq)
		if err != nil {
			return
		}
		if p.Seq > seq {
			seq = p.Seq
			best := "-"
			if p.Incumbent >= 0 {
				best = fmt.Sprintf("%d", p.Incumbent)
			}
			phase := p.Phase
			if phase == "" {
				phase = "-"
			}
			fmt.Fprintf(os.Stderr, "%s %s: phase=%s k=%d engine=%s best=%s conflicts=%d restarts=%d\n",
				id, name, phase, p.K, p.Engine, best, p.Conflicts, p.Restarts)
		}
		if !more {
			return
		}
	}
}

// storeConfig carries the persistent-cache flags into batch mode.
type storeConfig struct {
	dir      string
	maxAge   time.Duration
	maxBytes int64
}

// runBatch solves every named instance through the coloring service and
// prints a per-job summary once all finish (or ctx is cancelled). With
// store.dir set, the result cache is persisted there, so a later batch run
// (or gcolord) over the same directory reuses every definitive answer.
func runBatch(ctx context.Context, names []string, spec service.JobSpec, workers int, sc storeConfig, progress bool) error {
	cfg := service.Config{Workers: workers, DefaultTimeout: spec.Timeout}
	if sc.dir != "" {
		backend, err := service.OpenDiskBackendOptions(sc.dir, store.Options{
			MaxAge:   sc.maxAge,
			MaxBytes: sc.maxBytes,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "persistent cache at %s: %d records loaded\n", sc.dir, backend.Len())
		cfg.Backend = backend
	}
	svc := service.New(cfg)
	defer svc.Close()

	// Per-job failures (unreadable instance, invalid spec, admission
	// refusals that outlast the backoff) are collected and reported after
	// the table, so one bad entry no longer aborts the whole batch.
	type failure struct {
		name string
		err  error
	}
	var failures []failure

	ids := make([]string, 0, len(names))
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		g, err := loadInstance(name)
		if err != nil {
			failures = append(failures, failure{name, err})
			continue
		}
		id, err := submitWithRetry(ctx, svc, g, spec)
		if err != nil {
			failures = append(failures, failure{name, err})
			continue
		}
		ids = append(ids, id)
		if progress {
			go watchJobProgress(svc, id, g.Name())
		}
	}

	go func() {
		<-ctx.Done()
		svc.CancelAll()
	}()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "JOB\tINSTANCE\tSTATE\tSTATUS\tCHI\tRUNTIME\tENGINE\tCACHE")
	for _, id := range ids {
		info, err := svc.Wait(context.Background(), id)
		if err != nil {
			failures = append(failures, failure{id, err})
			continue
		}
		status, chi, runtime, engine, cache := "-", "-", "-", "-", ""
		if r := info.Result; r != nil {
			status = r.Status.String()
			if r.Status == pbsolver.StatusOptimal {
				chi = fmt.Sprintf("%d", r.Chi)
			}
			runtime = r.Runtime.Round(time.Millisecond).String()
			engine = r.Winner
			if r.CacheHit {
				cache = "hit"
			}
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			info.ID, info.Instance, info.State, status, chi, runtime, engine, cache)
	}
	w.Flush()
	st := svc.Stats()
	fmt.Printf("batch: %d submitted, %d solver runs, %d cache hits, %d dedup joins\n",
		st.Submitted, st.SolverRuns, st.CacheHits, st.DedupJoins)
	fmt.Printf("canon: %d generators, %d orbit prunes, %d prefix prunes, %d inexact (%d skipped persists)\n",
		st.CanonGenerators, st.CanonOrbitPrunes, st.CanonPrefixPrunes, st.CanonInexact, st.InexactSkips)
	if len(st.SBPVariants) > 0 {
		variants := make([]string, 0, len(st.SBPVariants))
		for name := range st.SBPVariants {
			variants = append(variants, name)
		}
		sort.Strings(variants)
		parts := make([]string, 0, len(variants))
		for _, name := range variants {
			vs := st.SBPVariants[name]
			parts = append(parts, fmt.Sprintf("%s %d runs/%d perms/%d clauses", name, vs.Runs, vs.Perms, vs.Clauses))
		}
		fmt.Printf("sbp: %s\n", strings.Join(parts, ", "))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "gcolor: %s: %v\n", f.name, f.err)
		}
		return fmt.Errorf("%d of %d jobs failed", len(failures), len(failures)+len(ids))
	}
	return nil
}

// submitWithRetry submits one job, honoring admission backpressure: a
// queue-full or rate-limit rejection is retried after the service's
// RetryAfter hint (falling back to backoff with decorrelated jitter)
// instead of failing the batch. Quota and validation rejections are
// permanent — more retries cannot fix them — and fail the job immediately.
func submitWithRetry(ctx context.Context, svc *service.Service, g *graph.Graph, spec service.JobSpec) (string, error) {
	const (
		maxAttempts = 8
		baseDelay   = 100 * time.Millisecond
		maxDelay    = 5 * time.Second
	)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	prev := baseDelay
	for attempt := 1; ; attempt++ {
		id, err := svc.Submit(g, spec)
		if err == nil {
			return id, nil
		}
		var adm *service.AdmissionError
		if !errors.As(err, &adm) || adm.Reason != service.ReasonQueueFull || attempt >= maxAttempts {
			return "", fmt.Errorf("submit %s: %w", g.Name(), err)
		}
		wait := adm.RetryAfter
		if wait <= 0 {
			// Decorrelated jitter — wait = min(cap, rand[base, prev*3]) —
			// so retries from many concurrent batch runners spread out
			// instead of re-colliding in synchronized exponential waves.
			wait = baseDelay + time.Duration(rng.Int63n(int64(prev*3-baseDelay)+1))
			if wait > maxDelay {
				wait = maxDelay
			}
			prev = wait
		} else if wait > maxDelay {
			wait = maxDelay
		}
		fmt.Fprintf(os.Stderr, "gcolor: %s: queue full, retrying in %v (attempt %d/%d)\n",
			g.Name(), wait.Round(time.Millisecond), attempt, maxAttempts)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

// loadInstance resolves a batch entry: a named benchmark when the registry
// knows it (benchmark names may contain dots, e.g. DSJC125.9), a DIMACS
// .col path otherwise.
func loadInstance(name string) (*graph.Graph, error) {
	g, berr := graph.Benchmark(name)
	if berr == nil {
		return g, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a benchmark (%v) nor a readable file (%v)", name, berr, err)
	}
	defer f.Close()
	return graph.ParseDimacs(name, f)
}

func loadGraph(bench, file string) (*graph.Graph, error) {
	switch {
	case bench != "" && file != "":
		return nil, fmt.Errorf("use -bench or -file, not both")
	case bench != "":
		return graph.Benchmark(bench)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ParseDimacs(file, f)
	}
	return nil, fmt.Errorf("one of -bench or -file is required")
}

func fatal(err error) {
	// os.Exit skips deferred handlers; flush an in-flight CPU profile so
	// -cpuprofile never leaves a truncated file behind on error paths.
	pprof.StopCPUProfile()
	fmt.Fprintln(os.Stderr, "gcolor:", err)
	os.Exit(1)
}

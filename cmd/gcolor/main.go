// Command gcolor optimally colors a graph through the paper's full flow:
// 0-1 ILP reduction, optional instance-independent and instance-dependent
// symmetry-breaking predicates, and a CDCL or branch-and-bound PB solver.
//
// Usage:
//
//	gcolor -bench queen6_6 -k 10 -sbp NU+SC -instdep -engine pbs2
//	gcolor -file graph.col -k 8 -engine pueblo -timeout 30s
//	gcolor -bench anna -exact          # problem-specific B&B baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/heuristic"
	"repro/internal/pbsolver"
)

func main() {
	bench := flag.String("bench", "", "named benchmark instance (see benchgen -list)")
	file := flag.String("file", "", "DIMACS .col file to color")
	k := flag.Int("k", 20, "color bound K")
	sbpName := flag.String("sbp", "none", "instance-independent SBPs: none,NU,CA,LI,SC,NU+SC")
	instDep := flag.Bool("instdep", false, "detect and break instance-dependent symmetries")
	engineName := flag.String("engine", "pbs2", "solver engine: pbs2,galena,pueblo,bnb")
	timeout := flag.Duration("timeout", time.Minute, "solve budget")
	exact := flag.Bool("exact", false, "use the problem-specific DSATUR branch-and-bound instead")
	showColoring := flag.Bool("coloring", false, "print the witness coloring")
	flag.Parse()

	g, err := loadGraph(*bench, *file)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance %s: |V|=%d |E|=%d\n", g.Name(), g.N(), g.M())

	if *exact {
		res := heuristic.ExactChromatic(g, time.Now().Add(*timeout))
		status := "proven"
		if !res.Complete {
			status = "budget exhausted (upper bound)"
		}
		fmt.Printf("exact B&B: chi = %d (%s), %d nodes\n", res.Chi, status, res.Nodes)
		if *showColoring {
			fmt.Println("coloring:", res.Colors)
		}
		return
	}

	kind, err := parseSBP(*sbpName)
	if err != nil {
		fatal(err)
	}
	eng, err := parseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	out := core.Solve(g, core.Config{
		K: *k, SBP: kind, InstanceDependent: *instDep,
		Engine: eng, Timeout: *timeout,
	})
	fmt.Printf("encoding: %d vars, %d clauses, %d PB constraints (SBP=%v)\n",
		out.EncodeStats.Vars, out.EncodeStats.CNF, out.EncodeStats.PB, kind)
	if out.Sym != nil {
		fmt.Printf("symmetries: |Aut|=%s, %d generators, detect %v, +%d SBP clauses\n",
			out.Sym.Order.String(), out.Sym.Generators, out.Sym.DetectTime.Round(time.Millisecond),
			out.Sym.AddedCNF)
	}
	switch out.Result.Status {
	case pbsolver.StatusOptimal:
		fmt.Printf("OPTIMAL: chi = %d (within K=%d) in %v, %d conflicts\n",
			out.Chi, *k, out.Result.Runtime.Round(time.Millisecond), out.Result.Stats.Conflicts)
	case pbsolver.StatusUnsat:
		fmt.Printf("UNSAT: chi > %d, proven in %v\n", *k, out.Result.Runtime.Round(time.Millisecond))
	case pbsolver.StatusSat:
		fmt.Printf("FEASIBLE: %d colors found, optimality unproven (budget)\n", out.Result.Objective)
	default:
		fmt.Printf("UNKNOWN: budget exhausted with no solution\n")
	}
	if *showColoring && out.Coloring != nil {
		fmt.Println("coloring:", out.Coloring)
	}
}

func loadGraph(bench, file string) (*graph.Graph, error) {
	switch {
	case bench != "" && file != "":
		return nil, fmt.Errorf("use -bench or -file, not both")
	case bench != "":
		return graph.Benchmark(bench)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ParseDimacs(file, f)
	}
	return nil, fmt.Errorf("one of -bench or -file is required")
}

func parseSBP(name string) (encode.SBPKind, error) {
	switch strings.ToUpper(name) {
	case "NONE":
		return encode.SBPNone, nil
	case "NU":
		return encode.SBPNU, nil
	case "CA":
		return encode.SBPCA, nil
	case "LI":
		return encode.SBPLI, nil
	case "SC":
		return encode.SBPSC, nil
	case "NU+SC", "NUSC":
		return encode.SBPNUSC, nil
	}
	return 0, fmt.Errorf("unknown SBP %q", name)
}

func parseEngine(name string) (pbsolver.Engine, error) {
	switch strings.ToLower(name) {
	case "pbs", "pbs2", "pbsii":
		return pbsolver.EnginePBS, nil
	case "galena":
		return pbsolver.EngineGalena, nil
	case "pueblo":
		return pbsolver.EnginePueblo, nil
	case "bnb", "cplex":
		return pbsolver.EngineBnB, nil
	}
	return 0, fmt.Errorf("unknown engine %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcolor:", err)
	os.Exit(1)
}

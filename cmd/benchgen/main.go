// Command benchgen materializes the 20 benchmark instances of the paper's
// Table 1 as DIMACS .col files (exact queens/Mycielski graphs; structure-
// matched stand-ins for the data-file instances — see DESIGN.md).
//
// Usage:
//
//	benchgen -list                 # print the registry
//	benchgen -out ./bench          # write all 20 .col files
//	benchgen -out . -only queen6_6
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

func main() {
	out := flag.String("out", "", "output directory for .col files")
	only := flag.String("only", "", "write a single named instance")
	list := flag.Bool("list", false, "list the benchmark registry")
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %6s %7s %6s %-10s %s\n", "name", "#V", "#E", "chi", "family", "kind")
		for _, info := range graph.BenchmarkTable {
			g, err := graph.Benchmark(info.Name)
			if err != nil {
				fatal(err)
			}
			kind := "stand-in"
			if info.Exact {
				kind = "exact"
			}
			fmt.Printf("%-12s %6d %7d %6d %-10s %s\n",
				info.Name, g.N(), g.M(), g.Chi, info.Family, kind)
		}
		return
	}
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, info := range graph.BenchmarkTable {
		if *only != "" && info.Name != *only {
			continue
		}
		g, err := graph.Benchmark(info.Name)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, info.Name+".col")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := graph.WriteDimacs(f, g); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (|V|=%d |E|=%d chi=%d)\n", path, g.N(), g.M(), g.Chi)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}

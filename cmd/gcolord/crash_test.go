package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles the real gcolord binary (race-instrumented, so the
// crash drill doubles as a race check on the replay and shutdown paths).
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gcolord")
	cmd := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build gcolord: %v\n%s", err, out)
	}
	return bin
}

type daemon struct {
	cmd    *exec.Cmd
	addr   string // http://host:port
	stderr *bytes.Buffer
}

// startDaemon launches the binary on an ephemeral port, learning the bound
// address through -addr.file, and waits until /readyz answers 200.
func startDaemon(t *testing.T, bin, storeDir string, extra ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addr.file", addrFile, "-store.dir", storeDir,
	}, extra...)
	d := &daemon{cmd: exec.Command(bin, args...), stderr: &bytes.Buffer{}}
	d.cmd.Stderr = d.stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("daemon %v stderr:\n%s", args, d.stderr.String())
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			d.addr = "http://" + string(b)
			break
		}
		if time.Now().After(deadline) {
			d.kill()
			t.Fatalf("daemon never wrote %s", addrFile)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		resp, err := http.Get(d.addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			d.kill()
			t.Fatal("daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill SIGKILLs the daemon — the crash under test — and reaps it.
func (d *daemon) kill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

func submit(t *testing.T, addr, body string) string {
	t.Helper()
	resp, err := http.Post(addr+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["id"]
}

// waitState polls the job until it reports state (or a deadline passes).
func waitState(t *testing.T, addr, id, state string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(addr + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var info struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if info.State == state {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, info.State, state)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitResult polls /result until the job produces one, failing fast on a
// terminal error status (4xx/5xx other than the 202 pending snapshot).
func waitResult(t *testing.T, addr, id string) (chi int, solved bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(addr + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var res struct {
				Chi    int  `json:"chi"`
				Solved bool `json:"solved"`
			}
			err := json.NewDecoder(resp.Body).Decode(&res)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			return res.Chi, res.Solved
		case http.StatusAccepted:
			resp.Body.Close()
		default:
			body, _ := json.Marshal(resp.Header)
			resp.Body.Close()
			t.Fatalf("job %s result: status %d (%s)", id, resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never produced a result", id)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func getStats(t *testing.T, addr string) map[string]any {
	t.Helper()
	resp, err := http.Get(addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

func asInt(v any) int64 {
	f, _ := v.(float64)
	return int64(f)
}

// TestCrashRecoveryReplaysJournal is the fault-tolerance acceptance
// scenario: SIGKILL a daemon with one job mid-solve and two more queued
// (two of the three isomorphic to each other), restart it over the same
// store directory, and require that the replayed jobs complete under their
// original ids with correct results — with no duplicate solver run for the
// isomorphic pair — and that a fresh submission does not collide with a
// resurrected id.
func TestCrashRecoveryReplaysJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crashes a real daemon binary")
	}
	bin := buildDaemon(t)
	storeDir := filepath.Join(t.TempDir(), "store")

	// Life 1: one worker, every solve held for a minute — job A occupies
	// the worker mid-solve while B and C sit in the queue.
	d1 := startDaemon(t, bin, storeDir, "-workers", "1", "-chaos.solvedelay", "1m")
	idA := submit(t, d1.addr, `{"name":"tri","n":3,"edges":[[0,1],[1,2],[0,2]],"k":3}`)
	waitState(t, d1.addr, idA, "running")
	idB := submit(t, d1.addr, `{"name":"c5","n":5,"edges":[[0,1],[1,2],[2,3],[3,4],[4,0]],"k":3}`)
	idC := submit(t, d1.addr, `{"name":"c5-rel","n":5,"edges":[[2,4],[1,4],[1,3],[0,3],[0,2]],"k":3}`)
	d1.kill() // the crash: nothing was completed, everything was journaled

	// Life 2: same store, no chaos. Replay must resurrect all three.
	d2 := startDaemon(t, bin, storeDir, "-workers", "2")
	killed := false
	defer func() {
		if !killed {
			d2.kill()
		}
	}()

	for _, job := range []struct {
		id, name string
	}{{idA, "triangle"}, {idB, "c5"}, {idC, "c5 relabeled"}} {
		chi, solved := waitResult(t, d2.addr, job.id)
		if !solved || chi != 3 {
			t.Fatalf("replayed %s (%s): chi=%d solved=%v, want chi=3 solved", job.name, job.id, chi, solved)
		}
	}

	stats := getStats(t, d2.addr)
	if got := asInt(stats["replayed"]); got != 3 {
		t.Fatalf("replayed = %d, want 3", got)
	}
	if runs := asInt(stats["solver_runs"]); runs > 2 {
		t.Fatalf("solver_runs = %d after replay, want ≤ 2 (isomorphic pair must share one run)", runs)
	}
	if hits := asInt(stats["cache_hits"]) + asInt(stats["dedup_joins"]); hits == 0 {
		t.Fatal("isomorphic replayed pair shared no solve (no cache hit or dedup join)")
	}

	// Fresh ids must start past the resurrected ones.
	idNew := submit(t, d2.addr, `{"name":"fresh","n":4,"edges":[[0,1],[1,2],[2,3]],"k":3}`)
	if idNew == idA || idNew == idB || idNew == idC {
		t.Fatalf("fresh submission reused replayed id %q", idNew)
	}
	if _, solved := waitResult(t, d2.addr, idNew); !solved {
		t.Fatalf("fresh job %s did not solve", idNew)
	}

	// Graceful exit: SIGTERM drains (nothing in flight) and exits 0, and
	// the draining daemon's /readyz flips to 503 so balancers stop
	// routing here.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM shutdown exited dirty: %v\nstderr:\n%s", err, d2.stderr.String())
	}
	killed = true
}

// TestDrainRejectsSubmissions: a draining daemon answers new submissions
// with the typed 503 "draining" envelope while finishing in-flight work,
// and /readyz reports not-ready.
func TestDrainRejectsSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives a real daemon binary")
	}
	bin := buildDaemon(t)
	storeDir := filepath.Join(t.TempDir(), "store")
	d := startDaemon(t, bin, storeDir, "-workers", "1", "-chaos.solvedelay", "2s", "-drain", "30s")
	defer d.kill()

	id := submit(t, d.addr, `{"name":"tri","n":3,"edges":[[0,1],[1,2],[0,2]],"k":3}`)
	waitState(t, d.addr, id, "running")
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// While draining, the daemon still serves: readyz flips to 503, new
	// submissions get the typed envelope, the running job finishes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(d.addr + "/readyz")
		if err != nil {
			t.Fatalf("readyz during drain: %v", err) // daemon must keep serving
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never flipped to 503 during drain (last %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Post(d.addr+"/v1/jobs", "application/json",
		strings.NewReader(`{"name":"late","n":3,"edges":[[0,1]],"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != "draining" {
		t.Fatalf("submission during drain: status %d code %q, want 503 draining", resp.StatusCode, env.Error.Code)
	}

	// The in-flight job survives the drain (exit 0 means Drain returned
	// before the grace period, i.e. the job finished, not canceled).
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("drain shutdown exited dirty: %v\nstderr:\n%s", err, d.stderr.String())
	}
}

package main

import (
	"fmt"
	"net/http"

	"repro/internal/service"
)

// metricsHandler serves GET /metrics in the Prometheus text exposition
// format (version 0.0.4): the cumulative service counters, the scheduler
// gauges, and — when a persistent store is configured — the store's
// file-size and GC counters. Everything here mirrors the JSON under
// /v1/stats and /v1/store; the text form exists so a stock Prometheus
// scrape needs no adapter.
func metricsHandler(svc *service.Service, disk *service.DiskBackend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		st := svc.Stats()
		counter := func(name, help string, v int64) {
			fmt.Fprintf(w, "# HELP gcolord_%s %s\n# TYPE gcolord_%s counter\ngcolord_%s %d\n", name, help, name, name, v)
		}
		gauge := func(name, help string, v int64) {
			fmt.Fprintf(w, "# HELP gcolord_%s %s\n# TYPE gcolord_%s gauge\ngcolord_%s %d\n", name, help, name, name, v)
		}
		counter("jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", st.Submitted)
		counter("jobs_completed_total", "Jobs finished with a result.", st.Completed)
		counter("jobs_failed_total", "Jobs that failed.", st.Failed)
		counter("jobs_canceled_total", "Jobs canceled or timed out before a result.", st.Canceled)
		counter("solver_runs_total", "Actual solver invocations (cache misses).", st.SolverRuns)
		counter("cache_hits_total", "Results served from the cache backend.", st.CacheHits)
		counter("dedup_joins_total", "Submissions that joined an identical in-flight solve.", st.DedupJoins)
		counter("store_errors_total", "Failed cache-backend writes.", st.StoreErrors)
		counter("canon_inexact_total", "Canonical searches truncated by their node budget.", st.CanonInexact)
		gauge("cache_entries", "Definitive records in the cache backend.", int64(st.CacheEntries))
		gauge("in_flight", "Solves currently leading a singleflight group.", int64(st.InFlight))
		gauge("queue_depth", "Jobs queued but not yet started.", int64(st.QueueDepth))
		gauge("running", "Jobs currently solving.", int64(st.Running))
		if disk != nil {
			ds := disk.Stats()
			gauge("store_entries", "Live records in the persistent store.", int64(ds.Entries))
			gauge("store_wal_bytes", "Current WAL size in bytes.", ds.WALBytes)
			gauge("store_snapshot_bytes", "Current snapshot size in bytes.", ds.SnapshotBytes)
			counter("store_tail_dropped_total", "Corrupt or truncated tail records dropped at startup.", int64(ds.TailDropped))
			counter("store_compactions_total", "Completed WAL-into-snapshot compactions.", ds.Compactions)
			counter("store_gc_dropped_total", "Records removed by the TTL/size GC policy.", ds.GCDropped)
		}
	}
}

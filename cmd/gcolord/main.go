// Command gcolord serves the concurrent coloring service over an HTTP JSON
// API. Submitted graphs are scheduled on a priority worker pool behind a
// multi-tenant admission controller; results are cached under a canonical
// form of the graph, so isomorphic submissions — from any client — are
// solved once and served many times.
//
// Usage:
//
//	gcolord -addr :8080 -workers 8 -timeout 60s
//	gcolord -store.dir /var/lib/gcolord       # restart-safe cache + job journal
//	gcolord -tenant.rate 10 -tenant.burst 20  # per-tenant token bucket
//	gcolord -tenant.maxinflight 64            # per-tenant in-flight quota
//	gcolord -drain 30s                        # SIGTERM grace for in-flight jobs
//	gcolord -log.json                         # structured logs as JSON
//	gcolord -pprof                            # additionally expose /debug/pprof
//
// With -store.dir, gcolord is crash-safe: accepted jobs are journaled
// before the submission is acknowledged (the journal lives in the
// journal/ subdirectory of the store), and a restarted daemon replays
// whatever a crash left pending — queued and running jobs resume, expired
// ones finish as "expired". Disk failures never take the daemon down:
// the cache backend and the journal each degrade to memory-only and
// reattach in the background (watch store_degraded in /v1/stats).
//
// On SIGTERM/SIGINT the daemon drains: admission answers 503 "draining"
// (and /readyz goes 503 so balancers stop routing here), in-flight jobs
// get up to -drain to finish, then the listener shuts down. A second
// signal skips the grace period.
//
// The HTTP surface lives in internal/httpapi (full reference in
// docs/API.md):
//
//	POST   /v1/jobs              submit a job; returns {"id": ...}
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         job status snapshot
//	GET    /v1/jobs/{id}/result  result (202 while pending)
//	GET    /v1/jobs/{id}/events  NDJSON stream: progress, heartbeats, result
//	GET    /v1/jobs/{id}/trace   completed job's span tree (see -trace.keep)
//	GET    /v1/trace/recent      newest completed traces, newest first
//	DELETE /v1/jobs/{id}         cancel the job
//	GET    /v1/stats             service + admission counters
//	GET    /v1/store             persistent-store counters (with -store.dir)
//	GET    /metrics              Prometheus text exposition of the same counters
//	GET    /healthz              liveness probe
//	GET    /readyz               readiness probe (503 while draining)
//
// Clients identify themselves with the X-Tenant header (absent = the
// "default" tenant); each tenant gets its own token-bucket rate limit and
// in-flight quota. Every non-2xx /v1 response carries the unified error
// envelope {"error": {"code", "message", "retry_after_ms"}}, and rejected
// submissions answer 429 with a Retry-After hint instead of blocking.
//
// The -chaos.* flags inject deterministic faults (slow solves, periodic
// solver panics) for crash drills and the crashtest suite; they have no
// place in production service but are safe there too — an injected panic
// fails only its own job.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	addrFile := flag.String("addr.file", "", "write the actually-bound listen address to this file (for :0 listeners in tests)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 1024, "max queued jobs before submissions are rejected")
	timeout := flag.Duration("timeout", time.Minute, "default per-job solve budget")
	cacheCap := flag.Int("cache", 4096, "canonical result cache capacity (memory backend)")
	canonMaxNodes := flag.Int64("canon.maxnodes", 0, "node budget per canonical labeling search (0 = package default); exhausted searches yield inexact, non-persisted cache keys")
	storeDir := flag.String("store.dir", "", "persist the result cache and job journal in this directory (snapshot+WAL); empty = memory only")
	storeMaxAge := flag.Duration("store.maxage", 0, "drop persisted records older than this at compaction (0 = keep forever)")
	storeMaxBytes := flag.Int64("store.maxbytes", 0, "target on-disk size of the persistent cache; oldest records dropped at compaction (0 = unbounded)")
	storeSync := flag.Bool("store.sync", false, "fsync every journal append (durable against power loss, not just process crashes)")
	heartbeat := flag.Duration("heartbeat", 10*time.Second, "idle heartbeat interval on /v1/jobs/{id}/events streams")
	reqTimeout := flag.Duration("req.timeout", 30*time.Second, "per-request timeout on non-streaming /v1 endpoints (<0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "SIGTERM grace: how long in-flight jobs may finish before they are canceled")
	enablePprof := flag.Bool("pprof", false, "expose /debug/pprof (profiling) on the same listener")
	traceKeep := flag.Int("trace.keep", 256, "completed job traces kept by the flight recorder (/v1/jobs/{id}/trace); 0 disables tracing")
	tenantRate := flag.Float64("tenant.rate", 0, "per-tenant submissions per second (token bucket; 0 = unlimited)")
	tenantBurst := flag.Int("tenant.burst", 0, "per-tenant token-bucket burst (0 = derived from -tenant.rate)")
	tenantInFlight := flag.Int("tenant.maxinflight", 0, "per-tenant queued+running job quota (0 = unlimited)")
	aging := flag.Duration("aging", 30*time.Second, "queue aging step: backlog a priority class overtakes per level")
	maxVertices := flag.Int("max.vertices", 0, "reject graphs with more vertices (413 graph_too_large; 0 = 100000)")
	maxEdges := flag.Int("max.edges", 0, "reject graphs with more edges (413 graph_too_large; 0 = 10000000)")
	logJSON := flag.Bool("log.json", false, "emit structured logs as JSON instead of text")
	chaosDelay := flag.Duration("chaos.solvedelay", 0, "fault injection: hold every solve this long before running it")
	chaosPanicEvery := flag.Int64("chaos.panicevery", 0, "fault injection: panic every Nth solver call (isolated per job; 0 = off)")
	flag.Parse()

	var h slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(h)

	// With a store directory, both disk components self-heal: the cache
	// backend is wrapped so write failures flip it memory-only with
	// background reopens, and the job journal (journal/ subdirectory)
	// behaves the same internally.
	var backend service.Backend
	var journal service.Journal
	var diskStats service.StoreStatser
	if *storeDir != "" {
		storeOpts := store.Options{
			MaxAge:   *storeMaxAge,
			MaxBytes: *storeMaxBytes,
		}
		disk, err := service.OpenDiskBackendOptions(*storeDir, storeOpts)
		if err != nil {
			log.Fatalf("gcolord: open store: %v", err)
		}
		resilient := service.NewResilientBackend(disk, func() (service.Backend, error) {
			return service.OpenDiskBackendOptions(*storeDir, storeOpts)
		}, logger)
		backend = resilient
		diskStats = resilient
		logger.Info("persistent cache opened", "dir", *storeDir, "records", disk.Len())

		journalDir := filepath.Join(*storeDir, "journal")
		journal, err = service.OpenDiskJournal(journalDir, store.Options{SyncWrites: *storeSync}, logger)
		if err != nil {
			log.Fatalf("gcolord: open job journal: %v", err)
		}
		logger.Info("job journal opened", "dir", journalDir, "pending", journal.Pending())
	}

	var solve service.SolveFunc
	if *chaosDelay > 0 {
		solve = faultinject.Delay(service.DefaultSolve, *chaosDelay)
	}
	if *chaosPanicEvery > 0 {
		base := solve
		if base == nil {
			base = service.DefaultSolve
		}
		solve, _ = faultinject.Panics(base, *chaosPanicEvery)
		logger.Warn("chaos mode: injecting solver panics", "every", *chaosPanicEvery)
	}

	svc := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		DefaultTimeout:    *timeout,
		CanonMaxNodes:     *canonMaxNodes,
		CacheCapacity:     *cacheCap,
		Backend:           backend,
		Journal:           journal,
		AgingStep:         *aging,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		TenantMaxInFlight: *tenantInFlight,
		TraceKeep:         traceKeepConfig(*traceKeep),
		Logger:            logger,
		Solve:             solve,
	})
	handler := httpapi.New(httpapi.Config{
		Service:        svc,
		Disk:           diskStats,
		Heartbeat:      *heartbeat,
		RequestTimeout: *reqTimeout,
		EnablePprof:    *enablePprof,
		Logger:         logger,
		MaxVertices:    *maxVertices,
		MaxEdges:       *maxEdges,
	})
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Idle keep-alive connections are reaped so a crowd of silent
		// clients cannot pin file descriptors forever.
		IdleTimeout: 2 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("gcolord: listen: %v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("gcolord: write -addr.file: %v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // a second signal kills the process the default way
		logger.Info("shutdown signal received; draining", "grace", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := svc.Drain(dctx); err != nil {
			logger.Warn("drain grace elapsed; canceling in-flight jobs", "err", err)
			svc.CancelAll()
		}
		cancel()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()

	logger.Info("gcolord listening",
		"addr", ln.Addr().String(), "workers", *workers, "queue", *queueDepth,
		"timeout", *timeout, "drain", *drain,
		"tenant_rate", *tenantRate, "tenant_maxinflight", *tenantInFlight)
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("gcolord: %v", err)
	}
	svc.Close()
	logger.Info("gcolord stopped")
}

// traceKeepConfig maps the -trace.keep flag onto service.Config.TraceKeep:
// the flag's 0 ("don't keep traces") selects the config's negative value
// ("tracing disabled"), and positive values pass through as the flight
// recorder's ring size.
func traceKeepConfig(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

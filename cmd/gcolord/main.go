// Command gcolord serves the concurrent coloring service over an HTTP JSON
// API. Submitted graphs are scheduled on a priority worker pool behind a
// multi-tenant admission controller; results are cached under a canonical
// form of the graph, so isomorphic submissions — from any client — are
// solved once and served many times.
//
// Usage:
//
//	gcolord -addr :8080 -workers 8 -timeout 60s
//	gcolord -store.dir /var/lib/gcolord       # restart-safe result cache
//	gcolord -tenant.rate 10 -tenant.burst 20  # per-tenant token bucket
//	gcolord -tenant.maxinflight 64            # per-tenant in-flight quota
//	gcolord -log.json                         # structured logs as JSON
//	gcolord -pprof                            # additionally expose /debug/pprof
//
// The HTTP surface lives in internal/httpapi (full reference in
// docs/API.md):
//
//	POST   /v1/jobs              submit a job; returns {"id": ...}
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         job status snapshot
//	GET    /v1/jobs/{id}/result  result (202 while pending)
//	GET    /v1/jobs/{id}/events  NDJSON stream: progress, heartbeats, result
//	DELETE /v1/jobs/{id}         cancel the job
//	GET    /v1/stats             service + admission counters
//	GET    /v1/store             persistent-store counters (with -store.dir)
//	GET    /metrics              Prometheus text exposition of the same counters
//	GET    /healthz              liveness probe
//
// Clients identify themselves with the X-Tenant header (absent = the
// "default" tenant); each tenant gets its own token-bucket rate limit and
// in-flight quota. Every non-2xx /v1 response carries the unified error
// envelope {"error": {"code", "message", "retry_after_ms"}}, and rejected
// submissions answer 429 with a Retry-After hint instead of blocking.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 1024, "max queued jobs before submissions are rejected")
	timeout := flag.Duration("timeout", time.Minute, "default per-job solve budget")
	cacheCap := flag.Int("cache", 4096, "canonical result cache capacity (memory backend)")
	storeDir := flag.String("store.dir", "", "persist the result cache in this directory (snapshot+WAL); empty = memory only")
	storeMaxAge := flag.Duration("store.maxage", 0, "drop persisted records older than this at compaction (0 = keep forever)")
	storeMaxBytes := flag.Int64("store.maxbytes", 0, "target on-disk size of the persistent cache; oldest records dropped at compaction (0 = unbounded)")
	heartbeat := flag.Duration("heartbeat", 10*time.Second, "idle heartbeat interval on /v1/jobs/{id}/events streams")
	enablePprof := flag.Bool("pprof", false, "expose /debug/pprof (profiling) on the same listener")
	tenantRate := flag.Float64("tenant.rate", 0, "per-tenant submissions per second (token bucket; 0 = unlimited)")
	tenantBurst := flag.Int("tenant.burst", 0, "per-tenant token-bucket burst (0 = derived from -tenant.rate)")
	tenantInFlight := flag.Int("tenant.maxinflight", 0, "per-tenant queued+running job quota (0 = unlimited)")
	aging := flag.Duration("aging", 30*time.Second, "queue aging step: backlog a priority class overtakes per level")
	maxVertices := flag.Int("max.vertices", 0, "reject graphs with more vertices (413 graph_too_large; 0 = 100000)")
	maxEdges := flag.Int("max.edges", 0, "reject graphs with more edges (413 graph_too_large; 0 = 10000000)")
	logJSON := flag.Bool("log.json", false, "emit structured logs as JSON instead of text")
	flag.Parse()

	var h slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(h)

	var backend service.Backend
	var disk *service.DiskBackend
	if *storeDir != "" {
		var err error
		disk, err = service.OpenDiskBackendOptions(*storeDir, store.Options{
			MaxAge:   *storeMaxAge,
			MaxBytes: *storeMaxBytes,
		})
		if err != nil {
			log.Fatalf("gcolord: open store: %v", err)
		}
		backend = disk
		logger.Info("persistent cache opened", "dir", *storeDir, "records", disk.Len())
	}
	svc := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		DefaultTimeout:    *timeout,
		CacheCapacity:     *cacheCap,
		Backend:           backend,
		AgingStep:         *aging,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		TenantMaxInFlight: *tenantInFlight,
		Logger:            logger,
	})
	handler := httpapi.New(httpapi.Config{
		Service:     svc,
		Disk:        disk,
		Heartbeat:   *heartbeat,
		EnablePprof: *enablePprof,
		Logger:      logger,
		MaxVertices: *maxVertices,
		MaxEdges:    *maxEdges,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
		svc.CancelAll()
	}()

	logger.Info("gcolord listening",
		"addr", *addr, "workers", *workers, "queue", *queueDepth,
		"timeout", *timeout, "tenant_rate", *tenantRate, "tenant_maxinflight", *tenantInFlight)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("gcolord: %v", err)
	}
	svc.Close()
}

// Command gcolord serves the concurrent coloring service over an HTTP JSON
// API. Submitted graphs are scheduled on a bounded worker pool; results are
// cached under a canonical form of the graph, so isomorphic submissions —
// from any client — are solved once and served many times.
//
// Usage:
//
//	gcolord -addr :8080 -workers 8 -timeout 60s
//	gcolord -store.dir /var/lib/gcolord   # restart-safe result cache
//	gcolord -pprof                        # additionally expose /debug/pprof
//
// API (full reference in docs/API.md):
//
//	POST   /v1/jobs              submit a job (see jobRequest); returns {"id": ...}
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         job status snapshot
//	GET    /v1/jobs/{id}/result  result (202 while pending)
//	GET    /v1/jobs/{id}/events  NDJSON stream: progress, heartbeats, result
//	                             (?after=<seq> resumes past already-seen snapshots)
//	DELETE /v1/jobs/{id}         cancel the job
//	GET    /v1/stats             service counters
//	GET    /v1/store             persistent-store counters (with -store.dir)
//	GET    /metrics              Prometheus text exposition of the same counters
//	GET    /healthz              liveness probe
//
// A job names its graph one of three ways: "bench" (a named benchmark
// instance), "dimacs" (an inline DIMACS .col document), or "n" plus
// "edges" (an explicit edge list).
//
// With -store.dir the canonical result cache is backed by an append-only
// snapshot+WAL store in that directory, so a restarted daemon answers
// isomorphic resubmissions of anything it ever solved without running a
// solver (see docs/API.md for the on-disk format).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 1024, "max queued jobs before submissions are rejected")
	timeout := flag.Duration("timeout", time.Minute, "default per-job solve budget")
	cacheCap := flag.Int("cache", 4096, "canonical result cache capacity (memory backend)")
	storeDir := flag.String("store.dir", "", "persist the result cache in this directory (snapshot+WAL); empty = memory only")
	storeMaxAge := flag.Duration("store.maxage", 0, "drop persisted records older than this at compaction (0 = keep forever)")
	storeMaxBytes := flag.Int64("store.maxbytes", 0, "target on-disk size of the persistent cache; oldest records dropped at compaction (0 = unbounded)")
	heartbeat := flag.Duration("heartbeat", 10*time.Second, "idle heartbeat interval on /v1/jobs/{id}/events streams")
	enablePprof := flag.Bool("pprof", false, "expose /debug/pprof (profiling) on the same listener")
	flag.Parse()

	var backend service.Backend
	var disk *service.DiskBackend
	if *storeDir != "" {
		var err error
		disk, err = service.OpenDiskBackendOptions(*storeDir, store.Options{
			MaxAge:   *storeMaxAge,
			MaxBytes: *storeMaxBytes,
		})
		if err != nil {
			log.Fatalf("gcolord: open store: %v", err)
		}
		backend = disk
		log.Printf("gcolord: persistent cache at %s (%d records loaded)", *storeDir, disk.Len())
	}
	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		CacheCapacity:  *cacheCap,
		Backend:        backend,
	})
	handler := newHandler(svc, disk, *heartbeat, *enablePprof)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
		svc.CancelAll()
	}()

	log.Printf("gcolord listening on %s (workers=%d queue=%d timeout=%v)",
		*addr, *workers, *queueDepth, *timeout)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("gcolord: %v", err)
	}
	svc.Close()
}

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	// Exactly one graph source: a named benchmark, an inline DIMACS .col
	// document, or an explicit vertex count + edge list.
	Bench  string   `json:"bench,omitempty"`
	Dimacs string   `json:"dimacs,omitempty"`
	Name   string   `json:"name,omitempty"`
	N      int      `json:"n,omitempty"`
	Edges  [][2]int `json:"edges,omitempty"`

	K                 int    `json:"k,omitempty"`
	SBP               string `json:"sbp,omitempty"`
	Engine            string `json:"engine,omitempty"`
	Portfolio         bool   `json:"portfolio,omitempty"`
	InstanceDependent bool   `json:"instance_dependent,omitempty"`
	Timeout           string `json:"timeout,omitempty"`

	// Per-job solver search knobs (see service.JobSpec); all optional and
	// excluded from the isomorphism result cache's key.
	ChronoThreshold int   `json:"chrono_threshold,omitempty"`
	VivifyBudget    int64 `json:"vivify_budget,omitempty"`
	DynamicLBD      bool  `json:"dynamic_lbd,omitempty"`
	GlueLBD         int   `json:"glue_lbd,omitempty"`
	ReduceInterval  int64 `json:"reduce_interval,omitempty"`
	RestartBase     int64 `json:"restart_base,omitempty"`

	// Cube-and-conquer knobs: Parallel > 1 solves the job with that many
	// workers over generated cubes; CubeDepth and ShareLBD tune the split
	// and the learnt-clause exchange. Also excluded from the cache key.
	Parallel  int `json:"parallel,omitempty"`
	CubeDepth int `json:"cube_depth,omitempty"`
	ShareLBD  int `json:"share_lbd,omitempty"`
}

func (r *jobRequest) graph() (*graph.Graph, error) {
	sources := 0
	for _, has := range []bool{r.Bench != "", r.Dimacs != "", len(r.Edges) > 0 || r.N > 0} {
		if has {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("specify exactly one of bench, dimacs, or n+edges")
	}
	switch {
	case r.Bench != "":
		return graph.Benchmark(r.Bench)
	case r.Dimacs != "":
		name := r.Name
		if name == "" {
			name = "dimacs"
		}
		return graph.ParseDimacs(name, strings.NewReader(r.Dimacs))
	default:
		name := r.Name
		if name == "" {
			name = "edges"
		}
		g := graph.New(name, r.N)
		for _, e := range r.Edges {
			if e[0] < 0 || e[1] < 0 || e[0] >= r.N || e[1] >= r.N {
				return nil, fmt.Errorf("edge (%d,%d) out of range [0,%d)", e[0], e[1], r.N)
			}
			g.AddEdge(e[0], e[1])
		}
		return g, nil
	}
}

func (r *jobRequest) spec() (service.JobSpec, error) {
	var spec service.JobSpec
	kind, err := service.ParseSBP(r.SBP)
	if err != nil {
		return spec, err
	}
	eng, err := service.ParseEngine(r.Engine)
	if err != nil {
		return spec, err
	}
	spec = service.JobSpec{
		K: r.K, SBP: kind, Engine: eng,
		Portfolio: r.Portfolio, InstanceDependent: r.InstanceDependent,
		ChronoThreshold: r.ChronoThreshold, VivifyBudget: r.VivifyBudget,
		DynamicLBD: r.DynamicLBD,
		GlueLBD:    r.GlueLBD, ReduceInterval: r.ReduceInterval, RestartBase: r.RestartBase,
		Parallel: r.Parallel, CubeDepth: r.CubeDepth, ShareLBD: r.ShareLBD,
	}
	if r.Timeout != "" {
		d, err := time.ParseDuration(r.Timeout)
		if err != nil {
			return spec, fmt.Errorf("timeout: %w", err)
		}
		spec.Timeout = d
	}
	return spec, nil
}

func newHandler(svc *service.Service, disk *service.DiskBackend, heartbeat time.Duration, enablePprof bool) http.Handler {
	if heartbeat <= 0 {
		heartbeat = 10 * time.Second
	}
	mux := http.NewServeMux()
	if enablePprof {
		// Opt-in only: profiling endpoints leak operational detail, so they
		// stay off unless -pprof is passed for a field investigation.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/metrics", metricsHandler(svc, disk))
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	mux.HandleFunc("/v1/store", func(w http.ResponseWriter, r *http.Request) {
		if disk == nil {
			httpError(w, http.StatusNotFound, "no persistent store configured (run with -store.dir)")
			return
		}
		writeJSON(w, http.StatusOK, disk.Stats())
	})
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			submit(svc, w, r)
		case http.MethodGet:
			writeJSON(w, http.StatusOK, svc.Jobs())
		default:
			httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		}
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		id, sub, _ := strings.Cut(rest, "/")
		switch {
		case r.Method == http.MethodDelete && sub == "":
			if err := svc.Cancel(id); err != nil {
				httpError(w, http.StatusNotFound, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "canceling"})
		case r.Method == http.MethodGet && sub == "":
			info, err := svc.Job(id)
			if err != nil {
				httpError(w, http.StatusNotFound, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, info)
		case r.Method == http.MethodGet && sub == "events":
			streamEvents(svc, w, r, id, heartbeat)
		case r.Method == http.MethodGet && sub == "result":
			info, err := svc.Job(id)
			if err != nil {
				httpError(w, http.StatusNotFound, err.Error())
				return
			}
			if info.Result == nil {
				writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": info.State})
				return
			}
			writeJSON(w, http.StatusOK, info.Result)
		default:
			httpError(w, http.StatusNotFound, "unknown route")
		}
	})
	return mux
}

func submit(svc *service.Service, w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
		return
	}
	g, err := req.graph()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec, err := req.spec()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, err := svc.Submit(g, spec)
	switch {
	case errors.Is(err, service.ErrQueueFull):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, service.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

// event is one NDJSON line on a /v1/jobs/{id}/events stream.
type event struct {
	// Type is "progress" (live solver counters), "heartbeat" (stream
	// keep-alive while the search is between reports), or "result" (the
	// terminal event: the job's final snapshot; the stream closes after
	// it).
	Type     string            `json:"type"`
	Progress *service.Progress `json:"progress,omitempty"`
	Job      *service.JobInfo  `json:"job,omitempty"`
}

// streamEvents serves the NDJSON progress stream for one job: progress
// events as the solver reports, heartbeats while idle, one terminal result
// event, then EOF. An already-finished job yields just the result event.
// A reconnecting client passes ?after=<seq> (the Seq of the last progress
// event it saw) to resume without replaying: only snapshots newer than
// that are sent. The service keeps the latest snapshot per job, so
// "resume" means "skip stale", never "replay history".
func streamEvents(svc *service.Service, w http.ResponseWriter, r *http.Request, id string, heartbeat time.Duration) {
	if _, err := svc.Job(id); err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	var after int64
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "after must be a non-negative integer sequence number")
			return
		}
		after = n
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(ev event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	seq := after
	for {
		hbCtx, cancel := context.WithTimeout(r.Context(), heartbeat)
		p, more, err := svc.NextProgress(hbCtx, id, seq)
		cancel()
		switch {
		case err == nil && more:
			seq = p.Seq
			if !emit(event{Type: "progress", Progress: &p}) {
				return
			}
		case err == nil && !more:
			info, jerr := svc.Job(id)
			if jerr != nil {
				return // pruned between calls
			}
			emit(event{Type: "result", Job: &info})
			return
		case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
			if !emit(event{Type: "heartbeat"}) {
				return
			}
		default:
			return // client went away, or the job record was pruned
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

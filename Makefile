GO ?= go

.PHONY: build test race fuzz bench bench-baseline bench-compare fmt vet linkcheck docs loadtest chaostest crashtest tracecheck sbpdata sbpdata-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz runs each native fuzz target briefly against the committed seed
# corpora (the CI smoke configuration; raise FUZZTIME for a longer hunt).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzSATSolve$$' -fuzztime $(FUZZTIME) ./internal/sat
	$(GO) test -run '^$$' -fuzz '^FuzzCanonicalForm$$' -fuzztime $(FUZZTIME) ./internal/autom
	$(GO) test -run '^$$' -fuzz '^FuzzSBPVariant$$' -fuzztime $(FUZZTIME) ./internal/sbp

# sbpdata regenerates the embedded canonizing-set data consumed by the
# canonset SBP variant; sbpdata-check regenerates to memory and fails on
# any diff against the committed copy (the CI staleness gate). Generation
# is deterministic, so a clean tree stays clean.
sbpdata:
	$(GO) run ./cmd/sbpgen

sbpdata-check:
	$(GO) run ./cmd/sbpgen -check

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# loadtest is the admission-control smoke: loadgen drives an in-process
# gcolord handler through an overload scenario (must shed load with
# enveloped 429s and Retry-After) and a light scenario (must accept
# everything). Exits nonzero if either contract breaks.
loadtest:
	$(GO) run ./cmd/loadgen -selftest

# tracecheck is the observability audit: loadgen drives real solves
# through an in-process daemon and requires every completed job to expose
# a well-formed span tree (single root, unique ids, children nested in
# parents) whose phases account for the job's wall time — including
# per-worker spans on a parallel solve, the phase histograms on /metrics,
# the flight-recorder listing, and the 404 envelope for unknown jobs.
tracecheck:
	$(GO) run ./cmd/loadgen -tracecheck

# chaostest drives the self-contained chaos drill: an in-process daemon
# with injected store write faults (including torn writes) and periodic
# solver panics must keep the API contract, isolate every panic to its
# own job, and still be serving after the disk "heals".
chaostest:
	$(GO) run ./cmd/loadgen -chaos

# crashtest is the fault-tolerance acceptance gate: the SIGKILL-and-replay
# drill against a real gcolord binary (journal replay under original ids,
# no duplicate solver runs for isomorphic entries, graceful drain), plus
# the service-level fault suites (panic isolation, degraded journal and
# cache backend, Wait/Close races, CancelAll on queued jobs) and the
# fault-injection harness's own tests — all under the race detector.
crashtest:
	$(GO) test -race -count=1 -run 'TestCrashRecoveryReplaysJournal|TestDrainRejectsSubmissions' ./cmd/gcolord/
	$(GO) test -race -count=1 -run 'Panic|Journal|Resilient|CancelAll|CloseRace|Fault|Inject|Delete|WALUpgrade' ./internal/service/ ./internal/faultinject/ ./internal/store/
	$(GO) run ./cmd/loadgen -chaos

# linkcheck verifies every intra-repo Markdown link and heading anchor
# resolves (external URLs are not fetched; the job stays hermetic).
linkcheck:
	$(GO) run ./cmd/linkcheck

# docs is the documentation gate CI runs: link integrity plus the
# vet/gofmt hygiene of everything the docs reference.
docs: linkcheck vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi
	@echo docs gate OK

# bench runs the full suite once with allocation reporting (the CI smoke
# configuration, with timing output kept for eyeballing).
bench:
	$(GO) test -bench=. -benchmem -count=1 -benchtime=1x -run '^$$' .

# bench-baseline records the committed perf snapshot future PRs diff
# against (ns/op and allocs/op per benchmark). Run on an idle machine.
bench-baseline:
	$(GO) test -bench=. -benchmem -count=1 -benchtime=1x -run '^$$' . \
		| $(GO) run ./cmd/benchjson > BENCH_baseline.json
	@echo wrote BENCH_baseline.json

# bench-compare re-runs the suite and diffs the current snapshot against
# the committed baseline: BENCH_current.json holds the raw numbers,
# BENCH_compare.txt the per-benchmark table (ns/op, allocs/op, and custom
# metrics such as the canonical search's nodes/op). CI runs this on every
# PR and uploads both files as the bench-compare artifact.
bench-compare:
	$(GO) test -bench=. -benchmem -count=1 -benchtime=1x -run '^$$' . \
		| $(GO) run ./cmd/benchjson > BENCH_current.json
	$(GO) run ./cmd/benchjson -compare BENCH_baseline.json BENCH_current.json \
		| tee BENCH_compare.txt

// Quickstart: optimally color a graph through the paper's flow.
//
// Build and run:
//
//	go run ./examples/quickstart
//
// It colors the Petersen graph (χ=3) with every instance-independent SBP
// construction, with and without instance-dependent symmetry breaking, and
// prints the encoding sizes, symmetry statistics and solver work so the
// effect of each construction is visible on a small instance.
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

func main() {
	g := graph.Petersen()
	fmt.Printf("instance: %s (χ=3)\n\n", g)

	fmt.Printf("%-8s %-9s %8s %8s %10s %9s %6s\n",
		"SBP", "inst-dep", "clauses", "|Aut|", "conflicts", "time", "chi")
	for _, kind := range encode.Kinds {
		for _, instDep := range []bool{false, true} {
			out := core.Solve(context.Background(), g, core.Config{
				K:                 5,
				SBP:               kind,
				InstanceDependent: instDep,
				Engine:            pbsolver.EnginePBS,
				Timeout:           30 * time.Second,
			})
			aut := "-"
			if out.Sym != nil {
				aut = out.Sym.Order.String()
			}
			fmt.Printf("%-8v %-9v %8d %8s %10d %9s %6d\n",
				kind, instDep, out.EncodeStats.CNF, aut,
				out.Result.Stats.Conflicts,
				out.Result.Runtime.Round(time.Millisecond),
				out.Chi)
			if out.Chi != 3 {
				panic("Petersen graph must 3-color")
			}
		}
	}

	fmt.Println("\nwitness coloring (SBP=NU+SC, instance-dependent SBPs on):")
	out := core.Solve(context.Background(), g, core.Config{
		K: 5, SBP: encode.SBPNUSC, InstanceDependent: true,
		Engine: pbsolver.EnginePBS, Timeout: 30 * time.Second,
	})
	for v, c := range out.Coloring {
		fmt.Printf("  vertex %d -> color %d\n", v, c)
	}
}

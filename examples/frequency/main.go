// Radio frequency assignment (paper §2): geographic regions broadcast on
// government-allocated frequencies; adjacent regions must not overlap. The
// paper's reduction represents a region needing K frequencies as a K-clique
// and joins adjacent regions completely bipartitely; a minimum coloring is
// a minimal frequency plan. The reduction itself introduces extra
// instance-independent symmetries (the clique vertices of one region are
// interchangeable), which is exactly the situation §3 and §5 discuss — this
// example shows instance-dependent SBPs picking those up automatically.
//
//	go run ./examples/frequency
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

type region struct {
	name  string
	needs int // frequencies required
}

var regions = []region{
	{"north", 3},
	{"east", 2},
	{"south", 3},
	{"west", 2},
	{"center", 4},
}

// adjacency between regions (sharing a border ⇒ no frequency overlap).
var borders = [][2]string{
	{"north", "east"}, {"north", "west"}, {"north", "center"},
	{"south", "east"}, {"south", "west"}, {"south", "center"},
	{"east", "center"}, {"west", "center"},
}

func main() {
	// Build the reduction: one vertex per (region, demand slot).
	offset := map[string]int{}
	total := 0
	for _, r := range regions {
		offset[r.name] = total
		total += r.needs
	}
	g := graph.New("frequency", total)
	for _, r := range regions {
		for i := 0; i < r.needs; i++ {
			for j := i + 1; j < r.needs; j++ {
				g.AddEdge(offset[r.name]+i, offset[r.name]+j)
			}
		}
	}
	for _, b := range borders {
		ra, rb := b[0], b[1]
		var na, nb int
		for _, r := range regions {
			if r.name == ra {
				na = r.needs
			}
			if r.name == rb {
				nb = r.needs
			}
		}
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				g.AddEdge(offset[ra]+i, offset[rb]+j)
			}
		}
	}
	fmt.Printf("reduction: %d slots, %d conflict edges\n", g.N(), g.M())

	out := core.Solve(context.Background(), g, core.Config{
		K:                 12,
		SBP:               encode.SBPNU,
		InstanceDependent: true,
		Engine:            pbsolver.EnginePueblo,
		Timeout:           time.Minute,
	})
	if out.Result.Status != pbsolver.StatusOptimal {
		fmt.Println("no optimal plan found:", out.Result.Status)
		return
	}
	fmt.Printf("minimum distinct frequencies: %d (detected %d symmetry generators, |Aut|=%s)\n\n",
		out.Chi, out.Sym.Generators, out.Sym.Order)

	fmt.Println("frequency plan:")
	for _, r := range regions {
		fmt.Printf("  %-7s:", r.name)
		for i := 0; i < r.needs; i++ {
			fmt.Printf(" f%d", out.Coloring[offset[r.name]+i])
		}
		fmt.Println()
	}

	// Sanity: adjacent regions share no frequency.
	for _, b := range borders {
		seen := map[int]bool{}
		for i, r := range regions {
			_ = i
			if r.name != b[0] {
				continue
			}
			for k := 0; k < r.needs; k++ {
				seen[out.Coloring[offset[r.name]+k]] = true
			}
		}
		for _, r := range regions {
			if r.name != b[1] {
				continue
			}
			for k := 0; k < r.needs; k++ {
				if seen[out.Coloring[offset[r.name]+k]] {
					panic("adjacent regions share a frequency")
				}
			}
		}
	}
	fmt.Println("\nverified: no border shares a frequency")
}

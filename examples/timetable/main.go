// Exam timetabling (paper §2, Leighton 1979; Welsh & Powell 1967): exams
// sharing a student cannot run in the same slot. Vertices are exams, edges
// are student conflicts, colors are time slots; the chromatic number is the
// minimal schedule length. The example compares the exact 0-1 ILP flow
// against DSATUR (optimal on bipartite graphs only) to show the gap exact
// solving closes.
//
//	go run ./examples/timetable
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/heuristic"
	"repro/internal/pbsolver"
)

func main() {
	const (
		exams       = 24
		students    = 60
		examsPerStu = 4
		seed        = 7
	)
	rng := rand.New(rand.NewSource(seed))

	// Enrollment: each student takes examsPerStu exams.
	enrollment := make([][]int, students)
	for s := range enrollment {
		picked := rng.Perm(exams)[:examsPerStu]
		enrollment[s] = picked
	}

	g := graph.New("timetable", exams)
	for _, exs := range enrollment {
		for i := 0; i < len(exs); i++ {
			for j := i + 1; j < len(exs); j++ {
				g.AddEdge(exs[i], exs[j])
			}
		}
	}
	fmt.Printf("conflict graph: %d exams, %d conflicting pairs (%d students)\n",
		g.N(), g.M(), students)

	dsatur := heuristic.DsaturCount(g)
	fmt.Printf("DSATUR heuristic schedule: %d slots\n", dsatur)

	out := core.Solve(context.Background(), g, core.Config{
		K:                 dsatur, // heuristic upper bound per §4.1's procedure
		SBP:               encode.SBPNUSC,
		InstanceDependent: true,
		Engine:            pbsolver.EngineGalena,
		Timeout:           2 * time.Minute,
	})
	if out.Result.Status != pbsolver.StatusOptimal {
		fmt.Println("exact solve incomplete:", out.Result.Status)
		return
	}
	fmt.Printf("optimal schedule: %d slots (proven, %v, %d conflicts)\n",
		out.Chi, out.Result.Runtime.Round(time.Millisecond), out.Result.Stats.Conflicts)
	if dsatur > out.Chi {
		fmt.Printf("exact solving saved %d slot(s) over DSATUR\n", dsatur-out.Chi)
	} else {
		fmt.Println("DSATUR happened to be optimal on this instance")
	}

	slots := make([][]int, out.Chi)
	for exam, slot := range out.Coloring {
		slots[slot] = append(slots[slot], exam)
	}
	fmt.Println("\ntimetable:")
	for s, exs := range slots {
		fmt.Printf("  slot %d: exams %v\n", s+1, exs)
	}

	// Verify no student has two exams in one slot.
	for s, exs := range enrollment {
		seen := map[int]bool{}
		for _, e := range exs {
			slot := out.Coloring[e]
			if seen[slot] {
				panic(fmt.Sprintf("student %d double-booked in slot %d", s, slot))
			}
			seen[slot] = true
		}
	}
	fmt.Println("\nverified: no student is double-booked")
}

// Register allocation via graph coloring (paper §2, Chaitin et al. 1981):
// build the interference graph of a small three-address program from a
// liveness analysis, then color it optimally with the 0-1 ILP flow. A
// K-coloring is a conflict-free assignment of the program's virtual
// registers to K machine registers.
//
//	go run ./examples/registeralloc
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

// instr is a three-address instruction: def gets the result, uses are read.
// Empty def means a pure use (e.g. a store or return).
type instr struct {
	def  string
	uses []string
	text string
}

// program computes dot = a·b + c·d + e·f and a running checksum, written
// so several temporaries overlap.
var program = []instr{
	{"a", nil, "a = load p0"},
	{"b", nil, "b = load p1"},
	{"t1", []string{"a", "b"}, "t1 = a * b"},
	{"c", nil, "c = load p2"},
	{"d", nil, "d = load p3"},
	{"t2", []string{"c", "d"}, "t2 = c * d"},
	{"s1", []string{"t1", "t2"}, "s1 = t1 + t2"},
	{"e", nil, "e = load p4"},
	{"f", nil, "f = load p5"},
	{"t3", []string{"e", "f"}, "t3 = e * f"},
	{"dot", []string{"s1", "t3"}, "dot = s1 + t3"},
	{"chk", []string{"a", "c", "e"}, "chk = a ^ c ^ e"},
	{"out", []string{"dot", "chk"}, "out = dot + chk"},
	{"", []string{"out"}, "ret out"},
}

// liveRanges runs a backward liveness pass and returns, per variable, the
// instruction interval [def, lastUse) on the straight-line program.
func liveRanges(prog []instr) map[string][2]int {
	ranges := map[string][2]int{}
	for i, in := range prog {
		if in.def != "" {
			r := ranges[in.def]
			r[0] = i
			r[1] = i + 1 // at least live through its definition
			ranges[in.def] = r
		}
		for _, u := range in.uses {
			r := ranges[u]
			r[1] = i + 1
			ranges[u] = r
		}
	}
	return ranges
}

func main() {
	fmt.Println("program:")
	for i, in := range program {
		fmt.Printf("  %2d: %s\n", i, in.text)
	}

	ranges := liveRanges(program)
	names := make([]string, 0, len(ranges))
	for i, in := range program {
		if in.def != "" && ranges[in.def][0] == i {
			names = append(names, in.def)
		}
	}
	fmt.Println("\nlive ranges:")
	for _, n := range names {
		fmt.Printf("  %-4s [%2d, %2d)\n", n, ranges[n][0], ranges[n][1])
	}

	// Interference graph: two variables conflict when their live ranges
	// overlap.
	g := graph.New("interference", len(names))
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	for i, a := range names {
		for j := i + 1; j < len(names); j++ {
			b := names[j]
			ra, rb := ranges[a], ranges[b]
			if ra[0] < rb[1] && rb[0] < ra[1] {
				g.AddEdge(idx[a], idx[b])
			}
		}
	}
	fmt.Printf("\ninterference graph: %d variables, %d conflicts\n", g.N(), g.M())

	out := core.Solve(context.Background(), g, core.Config{
		K:                 8, // registers available on the target
		SBP:               encode.SBPNUSC,
		InstanceDependent: true,
		Engine:            pbsolver.EnginePBS,
		Timeout:           time.Minute,
	})
	if out.Result.Status != pbsolver.StatusOptimal {
		fmt.Println("allocation failed:", out.Result.Status)
		return
	}
	fmt.Printf("minimum registers needed: %d (optimal, %v)\n\n",
		out.Chi, out.Result.Runtime.Round(time.Millisecond))
	fmt.Println("assignment:")
	for i, n := range names {
		fmt.Printf("  %-4s -> r%d\n", n, out.Coloring[i])
	}

	// Embedded targets have fewer registers; show the spill threshold by
	// probing smaller K (the paper's motivation: small chromatic numbers in
	// register allocation instances).
	fmt.Println("\nspill analysis:")
	for K := out.Chi; K >= out.Chi-1 && K >= 1; K-- {
		probe := core.Solve(context.Background(), g, core.Config{
			K: K, SBP: encode.SBPNU, Engine: pbsolver.EnginePBS, Timeout: time.Minute,
		})
		if probe.Result.Status == pbsolver.StatusOptimal {
			fmt.Printf("  %d registers: allocatable without spills\n", K)
		} else {
			fmt.Printf("  %d registers: spills required (proven)\n", K)
		}
	}
}
